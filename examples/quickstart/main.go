// Quickstart: build a small kernel, run it on the three processor modes of
// the paper (scalar buses, wide bus, wide bus + speculative dynamic
// vectorization) and compare. ARCHITECTURE.md at the repository root walks
// the pipeline these modes run on; examples/pointerchase shows the case
// static compilers cannot touch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"specvec/internal/config"
	"specvec/internal/isa"
	"specvec/internal/pipeline"
)

func main() {
	prog := buildSaxpy(20_000)

	fmt.Println("kernel: y[i] = a*x[i] + y[i], 20000 elements, 4-way core, 1 L1D port")
	fmt.Println()
	fmt.Printf("%-8s %8s %10s %12s %12s\n", "mode", "IPC", "cycles", "mem req/inst", "validated%")
	for _, mode := range []config.Mode{config.ModeNoIM, config.ModeIM, config.ModeV} {
		cfg := config.MustNamed(4, 1, mode)
		sim, err := pipeline.New(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Run(1 << 62)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8.3f %10d %12.3f %11.1f%%\n",
			mode, st.IPC(), st.Cycles, st.MemRequestsPerInst(), 100*st.ValidationFraction())
		if mode == config.ModeV {
			// The cycle loop recycles its structures instead of allocating:
			// heap news stay bounded by the in-flight window while recycles
			// grow with the run (see internal/profile).
			h := sim.HotStats()
			fmt.Printf("         (hot path: %d uops on the heap, %d recycled)\n",
				h.UopNews, h.UopRecycles)
		}
	}
	fmt.Println()
	fmt.Println("noIM = scalar buses; IM = one wide (line-sized) bus;")
	fmt.Println("V    = wide bus + speculative dynamic vectorization (the paper's proposal)")
}

// buildSaxpy emits a straightforward scalar saxpy loop. No SIMD
// instructions exist in the ISA — the V configuration discovers the
// parallelism at run time.
func buildSaxpy(n int) *isa.Program {
	b := isa.NewBuilder("saxpy")
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * 0.25
		y[i] = float64(i) * 0.5
	}
	b.DataFloats("x", x)
	b.DataFloats("y", y)
	b.DataFloats("a", []float64{3.0})

	r := isa.IntReg
	f := isa.FPReg
	b.LoadAddr(r(1), "x")
	b.LoadAddr(r(2), "y")
	b.LoadAddr(r(3), "a")
	b.Ldf(f(1), r(3), 0) // a
	b.Li(r(4), 0)
	b.Li(r(5), int64(n))
	b.Label("loop")
	b.Ldf(f(2), r(1), 0) // x[i]
	b.Ldf(f(3), r(2), 0) // y[i]
	b.Fmul(f(4), f(2), f(1))
	b.Fadd(f(5), f(4), f(3))
	b.Stf(f(5), r(2), 0)
	b.Addi(r(1), r(1), 8)
	b.Addi(r(2), r(2), 8)
	b.Addi(r(4), r(4), 1)
	b.Blt(r(4), r(5), "loop")
	b.Halt()
	return b.MustBuild()
}
