// Legacy: the paper's second motivation — binaries compiled before any
// SIMD extension existed cannot use new vector hardware, but speculative
// dynamic vectorization needs no recompilation: the SAME scalar binary
// runs unchanged while the microarchitecture grows wider vector registers
// underneath it.
//
// This example executes one fixed program on processors with 2-, 4- and
// 8-element vector registers (and on a plain superscalar), showing the
// binary transparently exploiting whatever width the hardware offers.
//
//	go run ./examples/legacy
package main

import (
	"fmt"
	"log"

	"specvec/internal/config"
	"specvec/internal/isa"
	"specvec/internal/pipeline"
)

func main() {
	prog := buildDotProduct(16_000)

	fmt.Println("one scalar binary (dot product), four generations of hardware:")
	fmt.Println()
	fmt.Printf("%-26s %8s %14s %12s\n", "hardware", "IPC", "mem req/inst", "validated%")

	type gen struct {
		label string
		cfg   config.Config
	}
	plain := config.MustNamed(4, 1, config.ModeIM)
	vl2 := config.MustNamed(4, 1, config.ModeV)
	vl2.VectorLen = 2
	vl4 := config.MustNamed(4, 1, config.ModeV)
	vl8 := config.MustNamed(4, 1, config.ModeV)
	vl8.VectorLen = 8

	for _, g := range []gen{
		{"superscalar only", plain},
		{"+ SDV, 2-elem registers", vl2},
		{"+ SDV, 4-elem registers", vl4},
		{"+ SDV, 8-elem registers", vl8},
	} {
		sim, err := pipeline.New(g.cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Run(1 << 62)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %8.3f %14.3f %11.1f%%\n",
			g.label, st.IPC(), st.MemRequestsPerInst(), 100*st.ValidationFraction())
	}
	fmt.Println()
	fmt.Println("the binary contains no vector instructions; each machine discovers")
	fmt.Println("the parallelism at run time, to the width of its own registers.")
}

func buildDotProduct(n int) *isa.Program {
	b := isa.NewBuilder("dot")
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%100) * 0.01
		y[i] = float64(i%50) * 0.02
	}
	b.DataFloats("x", x)
	b.DataFloats("y", y)
	b.DataZero("part", n) // partial products, summed functionally later

	r := isa.IntReg
	f := isa.FPReg
	b.LoadAddr(r(1), "x")
	b.LoadAddr(r(2), "y")
	b.LoadAddr(r(3), "part")
	b.Li(r(4), 0)
	b.Li(r(5), int64(n))
	b.Label("loop")
	b.Ldf(f(1), r(1), 0)
	b.Ldf(f(2), r(2), 0)
	b.Fmul(f(3), f(1), f(2))
	b.Stf(f(3), r(3), 0)
	b.Addi(r(1), r(1), 8)
	b.Addi(r(2), r(2), 8)
	b.Addi(r(3), r(3), 8)
	b.Addi(r(4), r(4), 1)
	b.Blt(r(4), r(5), "loop")
	b.Halt()
	return b.MustBuild()
}
